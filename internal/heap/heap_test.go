package heap

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
)

func newHeap(t *testing.T, size int64, policy core.MovePolicy) (*Heap, *machine.Context) {
	t.Helper()
	m := machine.MustNew(machine.Config{Cost: sim.XeonGold6130()})
	k := kernel.New(m)
	as := m.NewAddressSpace()
	h, err := New(as, k, Config{SizeBytes: size, Policy: policy, ZeroOnAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	return h, m.NewContext(0)
}

func TestAllocSpecTotalBytes(t *testing.T) {
	cases := []struct {
		spec AllocSpec
		want int
	}{
		{AllocSpec{}, HeaderBytes},
		{AllocSpec{NumRefs: 2}, HeaderBytes + 16},
		{AllocSpec{Payload: 1}, HeaderBytes + 8},
		{AllocSpec{Payload: 8}, HeaderBytes + 8},
		{AllocSpec{NumRefs: 1, Payload: 9}, HeaderBytes + 8 + 16},
	}
	for _, c := range cases {
		if got := c.spec.TotalBytes(); got != c.want {
			t.Errorf("TotalBytes(%+v) = %d, want %d", c.spec, got, c.want)
		}
	}
}

func TestAllocSharedSmall(t *testing.T) {
	h, ctx := newHeap(t, 1<<20, core.DefaultPolicy())
	o, err := h.AllocShared(ctx, AllocSpec{NumRefs: 2, Payload: 40, Class: 7})
	if err != nil {
		t.Fatal(err)
	}
	hd, err := h.ReadHeader(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	if hd.Size != HeaderBytes+16+40 || hd.Marked || hd.Filler {
		t.Errorf("header %+v", hd)
	}
	meta, _ := h.ReadMeta(ctx, o)
	if meta.NumRefs != 2 || meta.Class != 7 || meta.Age != 0 {
		t.Errorf("meta %+v", meta)
	}
	if fwd, _ := h.Forward(ctx, o); fwd != 0 {
		t.Errorf("fresh object has forward %#x", fwd)
	}
	if err := h.VerifyWalkable(); err != nil {
		t.Error(err)
	}
}

func TestAllocSharedLargeIsAligned(t *testing.T) {
	h, ctx := newHeap(t, 4<<20, core.DefaultPolicy())
	// A small object first so the frontier is unaligned.
	if _, err := h.AllocShared(ctx, AllocSpec{Payload: 24}); err != nil {
		t.Fatal(err)
	}
	big, err := h.AllocShared(ctx, AllocSpec{Payload: 11 * mem.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	if !core.PageAligned(big.VA()) {
		t.Errorf("large object at %#x not page-aligned", big.VA())
	}
	// The frontier must be re-aligned after the large object (Alg 3 L19).
	if h.Top()&mem.PageMask != 0 {
		t.Errorf("top %#x not aligned after large object", h.Top())
	}
	if err := h.VerifyWalkable(); err != nil {
		t.Error(err)
	}
}

func TestAllocSharedHeapFull(t *testing.T) {
	h, ctx := newHeap(t, 64<<10, core.DefaultPolicy())
	var err error
	for i := 0; i < 10000; i++ {
		if _, err = h.AllocShared(ctx, AllocSpec{Payload: 1024}); err != nil {
			break
		}
	}
	if err != ErrHeapFull {
		t.Fatalf("err = %v, want ErrHeapFull", err)
	}
	if err := h.VerifyWalkable(); err != nil {
		t.Error(err)
	}
}

func TestZeroOnAlloc(t *testing.T) {
	h, ctx := newHeap(t, 1<<20, core.DefaultPolicy())
	// Dirty the heap directly, then allocate over it.
	dirty := bytes.Repeat([]byte{0xEE}, 4096)
	h.AS.RawWrite(h.Start(), dirty)
	o, err := h.AllocShared(ctx, AllocSpec{NumRefs: 1, Payload: 64})
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := h.Ref(ctx, o, 0); r != 0 {
		t.Error("ref slot not zeroed")
	}
	buf := make([]byte, 64)
	h.ReadPayload(ctx, o, 1, 0, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("payload not zeroed")
		}
	}
}

func TestRefsAndPayloadRoundTrip(t *testing.T) {
	h, ctx := newHeap(t, 1<<20, core.DefaultPolicy())
	a, _ := h.AllocShared(ctx, AllocSpec{NumRefs: 3, Payload: 128, Class: 1})
	b, _ := h.AllocShared(ctx, AllocSpec{Payload: 16, Class: 2})
	if err := h.SetRef(ctx, a, 1, b); err != nil {
		t.Fatal(err)
	}
	if got, _ := h.Ref(ctx, a, 1); got != b {
		t.Errorf("Ref = %#x, want %#x", got, b)
	}
	if got, _ := h.Ref(ctx, a, 0); got != 0 {
		t.Error("untouched ref not null")
	}
	want := []byte("hello simulated heap")
	h.WritePayload(ctx, a, 3, 10, want)
	got := make([]byte, len(want))
	h.ReadPayload(ctx, a, 3, 10, got)
	if !bytes.Equal(got, want) {
		t.Error("payload round trip failed")
	}
	h.WritePayloadWord(ctx, a, 3, 40, 0xfeed)
	if w, _ := h.ReadPayloadWord(ctx, a, 3, 40); w != 0xfeed {
		t.Error("payload word round trip failed")
	}
}

func TestWriteBarrierFires(t *testing.T) {
	h, ctx := newHeap(t, 1<<20, core.DefaultPolicy())
	var gotHolder Object
	var gotSlot int
	var gotTarget Object
	h.Barrier = func(_ *machine.Context, holder Object, slot int, target Object) {
		gotHolder, gotSlot, gotTarget = holder, slot, target
	}
	a, _ := h.AllocShared(ctx, AllocSpec{NumRefs: 1})
	b, _ := h.AllocShared(ctx, AllocSpec{Payload: 8})
	h.SetRef(ctx, a, 0, b)
	if gotHolder != a || gotSlot != 0 || gotTarget != b {
		t.Errorf("barrier saw (%#x, %d, %#x)", gotHolder, gotSlot, gotTarget)
	}
}

func TestMarkAndAge(t *testing.T) {
	h, ctx := newHeap(t, 1<<20, core.DefaultPolicy())
	o, _ := h.AllocShared(ctx, AllocSpec{Payload: 8})
	if hd, _ := h.ReadHeader(ctx, o); hd.Marked {
		t.Error("fresh object marked")
	}
	h.SetMark(ctx, o, true)
	if hd, _ := h.ReadHeader(ctx, o); !hd.Marked {
		t.Error("mark not set")
	}
	h.SetMark(ctx, o, false)
	if hd, _ := h.ReadHeader(ctx, o); hd.Marked {
		t.Error("mark not cleared")
	}
	h.SetAge(ctx, o, 3)
	if meta, _ := h.ReadMeta(ctx, o); meta.Age != 3 {
		t.Errorf("age = %d", meta.Age)
	}
	// Age must not disturb refs/class.
	h.SetAge(ctx, o, 7)
	if meta, _ := h.ReadMeta(ctx, o); meta.NumRefs != 0 || meta.Class != 0 || meta.Age != 7 {
		t.Errorf("meta corrupted: %+v", meta)
	}
}

func TestForwardRoundTrip(t *testing.T) {
	h, ctx := newHeap(t, 1<<20, core.DefaultPolicy())
	o, _ := h.AllocShared(ctx, AllocSpec{Payload: 8})
	h.SetForward(ctx, o, Object(h.Start()))
	if f, _ := h.Forward(ctx, o); f.VA() != h.Start() {
		t.Error("forward round trip failed")
	}
}

func TestTLABSmallAndLargeSeparation(t *testing.T) {
	h, ctx := newHeap(t, 8<<20, core.DefaultPolicy())
	h.tlabBytes = 256 << 10
	var tl TLAB
	if err := h.RefillTLAB(ctx, &tl); err != nil {
		t.Fatal(err)
	}
	small, err := h.Alloc(ctx, &tl, AllocSpec{Payload: 32})
	if err != nil {
		t.Fatal(err)
	}
	large, err := h.Alloc(ctx, &tl, AllocSpec{Payload: 10 * mem.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	if !core.PageAligned(large.VA()) {
		t.Errorf("TLAB large object at %#x not aligned", large.VA())
	}
	if large.VA() <= small.VA() {
		t.Error("large object not placed from the TLAB end")
	}
	small2, _ := h.Alloc(ctx, &tl, AllocSpec{Payload: 32})
	if small2.VA() != small.VA()+uint64(AllocSpec{Payload: 32}.TotalBytes()) {
		t.Error("small objects not contiguous despite interleaved large allocation")
	}
	if err := tl.Retire(h, ctx); err != nil {
		t.Fatal(err)
	}
	if err := h.VerifyWalkable(); err != nil {
		t.Error(err)
	}
}

func TestTLABRefillOnExhaustion(t *testing.T) {
	h, ctx := newHeap(t, 8<<20, core.DefaultPolicy())
	var tl TLAB
	if err := h.RefillTLAB(ctx, &tl); err != nil {
		t.Fatal(err)
	}
	spec := AllocSpec{Payload: 4000}
	for i := 0; i < 100; i++ { // far more than one TLAB holds
		if _, err := h.Alloc(ctx, &tl, spec); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	tl.Retire(h, ctx)
	if err := h.VerifyWalkable(); err != nil {
		t.Error(err)
	}
}

func TestTLABDoubleRetireIsNoop(t *testing.T) {
	h, ctx := newHeap(t, 1<<20, core.DefaultPolicy())
	var tl TLAB
	h.RefillTLAB(ctx, &tl)
	if err := tl.Retire(h, ctx); err != nil {
		t.Fatal(err)
	}
	if err := tl.Retire(h, ctx); err != nil {
		t.Fatal(err)
	}
	if tl.Valid() {
		t.Error("TLAB valid after retire")
	}
}

func TestRetireAllTLABs(t *testing.T) {
	h, ctx := newHeap(t, 8<<20, core.DefaultPolicy())
	tlabs := make([]*TLAB, 4)
	for i := range tlabs {
		tlabs[i] = &TLAB{}
		if err := h.RefillTLAB(ctx, tlabs[i]); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Alloc(ctx, tlabs[i], AllocSpec{Payload: 100}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.RetireAllTLABs(ctx); err != nil {
		t.Fatal(err)
	}
	for i, tl := range tlabs {
		if tl.Valid() {
			t.Errorf("TLAB %d still valid", i)
		}
	}
	if err := h.VerifyWalkable(); err != nil {
		t.Error(err)
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	h, ctx := newHeap(t, 4<<20, core.DefaultPolicy())
	var want []Object
	for i := 0; i < 5; i++ {
		o, err := h.AllocShared(ctx, AllocSpec{Payload: 100 + i*512, Class: uint16(i)})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, o)
	}
	big, _ := h.AllocShared(ctx, AllocSpec{Payload: 12 * mem.PageSize})
	want = append(want, big)

	var got []Object
	err := h.Walk(ctx, h.Start(), h.Top(), func(o Object, hd Header) (bool, error) {
		if !hd.Filler {
			got = append(got, o)
		}
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("walk saw %d objects, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("walk[%d] = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestWalkEarlyStop(t *testing.T) {
	h, ctx := newHeap(t, 1<<20, core.DefaultPolicy())
	for i := 0; i < 5; i++ {
		h.AllocShared(ctx, AllocSpec{Payload: 64})
	}
	count := 0
	h.Walk(ctx, h.Start(), h.Top(), func(Object, Header) (bool, error) {
		count++
		return count < 2, nil
	})
	if count != 2 {
		t.Errorf("walk visited %d, want 2", count)
	}
}

func TestWriteFillerValidation(t *testing.T) {
	h, ctx := newHeap(t, 1<<20, core.DefaultPolicy())
	if err := h.WriteFiller(ctx, h.Start(), 0); err != nil {
		t.Error("zero filler should be a no-op")
	}
	if err := h.WriteFiller(ctx, h.Start(), 4); err == nil {
		t.Error("4-byte filler accepted")
	}
	if err := h.WriteFiller(ctx, h.Start(), 12); err == nil {
		t.Error("non multiple-of-8 filler accepted")
	}
}

func TestSetTopBounds(t *testing.T) {
	h, _ := newHeap(t, 1<<20, core.DefaultPolicy())
	defer func() {
		if recover() == nil {
			t.Fatal("SetTop outside heap did not panic")
		}
	}()
	h.SetTop(h.End() + 1)
}

func TestAllocStats(t *testing.T) {
	h, ctx := newHeap(t, 1<<20, core.DefaultPolicy())
	h.AllocShared(ctx, AllocSpec{Payload: 8})
	h.AllocShared(ctx, AllocSpec{Payload: 8})
	n, b := h.AllocStats()
	if n != 2 || b != 2*uint64(AllocSpec{Payload: 8}.TotalBytes()) {
		t.Errorf("stats %d objects %d bytes", n, b)
	}
}

func TestBadSpecRejected(t *testing.T) {
	h, ctx := newHeap(t, 1<<20, core.DefaultPolicy())
	if _, err := h.AllocShared(ctx, AllocSpec{NumRefs: -1}); err == nil {
		t.Error("negative refs accepted")
	}
	if _, err := h.Alloc(ctx, nil, AllocSpec{Payload: -5}); err == nil {
		t.Error("negative payload accepted")
	}
}

// Property: any interleaving of small and large allocations (with TLAB
// refills) leaves the heap walkable after retirement, with all swappable
// objects page-aligned.
func TestHeapAlwaysWalkableQuick(t *testing.T) {
	prop := func(sizes []uint16) bool {
		h, ctx := newHeap(t, 16<<20, core.DefaultPolicy())
		var tl TLAB
		if err := h.RefillTLAB(ctx, &tl); err != nil {
			return false
		}
		for _, s := range sizes {
			payload := int(s) % (15 * mem.PageSize)
			if _, err := h.Alloc(ctx, &tl, AllocSpec{Payload: payload}); err != nil {
				if err == ErrHeapFull {
					break
				}
				return false
			}
		}
		if err := tl.Retire(h, ctx); err != nil {
			return false
		}
		return h.VerifyWalkable() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: internal fragmentation from the alignment rule stays bounded —
// the paper claims under ~5% of heap for a 10-page threshold (up to half a
// page wasted per >=10-page object).
func TestFragmentationBounded(t *testing.T) {
	h, ctx := newHeap(t, 32<<20, core.DefaultPolicy())
	live := 0
	for i := 0; ; i++ {
		payload := 10*mem.PageSize + (i%7)*1111
		o, err := h.AllocShared(ctx, AllocSpec{Payload: payload})
		if err != nil {
			break
		}
		_ = o
		live += AllocSpec{Payload: payload}.TotalBytes()
	}
	waste := h.UsedBytes() - live
	frac := float64(waste) / float64(h.Capacity())
	// The paper bounds waste at roughly half a page per >=10-page object
	// ("about less than 5% of heap size"); allow a small margin for the
	// mixed sizes used here.
	if frac > 0.06 {
		t.Errorf("fragmentation %.2f%% exceeds the paper's ~5%% bound", 100*frac)
	}
}
