// Package heap implements the simulated JVM heap that SVAGC and the
// baseline collectors manage: a contiguous bump-allocated space on a
// simulated address space, with TLABs, the page-alignment rules of the
// paper's Algorithm 3 for swappable (large) objects, and a linearly
// walkable object layout maintained with filler objects.
package heap

import (
	"fmt"

	"repro/internal/machine"
)

// Object header layout (three 8-byte words):
//
//	word0  bits 0..47  object size in bytes, including the header
//	       bit  56     mark bit (set during GC marking)
//	       bit  57     filler bit (dead padding; walkers skip it)
//	word1  bits 0..31  number of reference slots
//	       bits 32..47 class ID (workload-defined type tag)
//	       bits 48..55 age (minor-GC survival count, used by pargc)
//	word2  forwarding virtual address (0 when none)
//
// Reference slots (8 bytes each, a VA or 0) follow the header; the payload
// follows the reference slots. Filler objects consist of word0 only.
const (
	// HeaderBytes is the full header size of a normal object.
	HeaderBytes = 24
	// FillerHeaderBytes is the header size of a filler: one word.
	FillerHeaderBytes = 8
	// MinFillerBytes is the smallest representable gap.
	MinFillerBytes = FillerHeaderBytes

	sizeMask  = (uint64(1) << 48) - 1
	markBit   = uint64(1) << 56
	fillerBit = uint64(1) << 57

	refsShift  = 0
	refsMask   = uint64(0xffffffff)
	classShift = 32
	classMask  = uint64(0xffff)
	ageShift   = 48
	ageMask    = uint64(0xff)
)

// Object is a reference to a heap object: the virtual address of its
// header. The zero Object is the null reference.
type Object uint64

// VA returns the object's header address.
func (o Object) VA() uint64 { return uint64(o) }

// AllocSpec describes an allocation request.
type AllocSpec struct {
	NumRefs int    // reference slots
	Payload int    // payload bytes (rounded up to 8)
	Class   uint16 // workload-defined type tag
}

// TotalBytes returns the rounded total footprint of the object.
func (s AllocSpec) TotalBytes() int {
	return HeaderBytes + 8*s.NumRefs + (s.Payload+7)&^7
}

func (s AllocSpec) validate() error {
	if s.NumRefs < 0 || s.Payload < 0 {
		return fmt.Errorf("heap: invalid spec %+v", s)
	}
	if uint64(s.TotalBytes()) > sizeMask {
		return fmt.Errorf("heap: object of %d bytes too large", s.TotalBytes())
	}
	return nil
}

func packWord0(size int, mark, filler bool) uint64 {
	w := uint64(size) & sizeMask
	if mark {
		w |= markBit
	}
	if filler {
		w |= fillerBit
	}
	return w
}

func packWord1(numRefs int, class uint16, age uint8) uint64 {
	return uint64(numRefs)&refsMask |
		(uint64(class)&classMask)<<classShift |
		(uint64(age)&ageMask)<<ageShift
}

// Header is the decoded first word of an object.
type Header struct {
	Size   int
	Marked bool
	Filler bool
}

// ReadHeader performs a charged read of word0 and decodes it.
func (h *Heap) ReadHeader(ctx *machine.Context, o Object) (Header, error) {
	w, err := h.AS.ReadWord(&ctx.Env, o.VA())
	if err != nil {
		return Header{}, err
	}
	return Header{
		Size:   int(w & sizeMask),
		Marked: w&markBit != 0,
		Filler: w&fillerBit != 0,
	}, nil
}

// SizeOf returns the object's total size (charged header read).
func (h *Heap) SizeOf(ctx *machine.Context, o Object) (int, error) {
	hd, err := h.ReadHeader(ctx, o)
	return hd.Size, err
}

// SetMark sets or clears the mark bit (charged read-modify-write).
func (h *Heap) SetMark(ctx *machine.Context, o Object, marked bool) error {
	w, err := h.AS.ReadWord(&ctx.Env, o.VA())
	if err != nil {
		return err
	}
	if marked {
		w |= markBit
	} else {
		w &^= markBit
	}
	return h.AS.WriteWord(&ctx.Env, o.VA(), w)
}

// Meta is the decoded second word of an object.
type Meta struct {
	NumRefs int
	Class   uint16
	Age     uint8
}

// ReadMeta performs a charged read of word1 and decodes it.
func (h *Heap) ReadMeta(ctx *machine.Context, o Object) (Meta, error) {
	w, err := h.AS.ReadWord(&ctx.Env, o.VA()+8)
	if err != nil {
		return Meta{}, err
	}
	return Meta{
		NumRefs: int(w & refsMask),
		Class:   uint16(w >> classShift & classMask),
		Age:     uint8(w >> ageShift & ageMask),
	}, nil
}

// SetAge stores the object's age (charged read-modify-write).
func (h *Heap) SetAge(ctx *machine.Context, o Object, age uint8) error {
	w, err := h.AS.ReadWord(&ctx.Env, o.VA()+8)
	if err != nil {
		return err
	}
	w = w&^(ageMask<<ageShift) | uint64(age)<<ageShift
	return h.AS.WriteWord(&ctx.Env, o.VA()+8, w)
}

// Forward returns the forwarding address stored in the header (0 = none).
func (h *Heap) Forward(ctx *machine.Context, o Object) (Object, error) {
	w, err := h.AS.ReadWord(&ctx.Env, o.VA()+16)
	return Object(w), err
}

// SetForward stores the forwarding address.
func (h *Heap) SetForward(ctx *machine.Context, o Object, fwd Object) error {
	return h.AS.WriteWord(&ctx.Env, o.VA()+16, fwd.VA())
}

// ClearGCBits rewrites the object's word0 as an unmarked, non-filler
// header of the given size and nulls the forwarding word — the per-object
// cleanup a compacting collector performs as it relocates (charged).
func (h *Heap) ClearGCBits(ctx *machine.Context, o Object, size int) error {
	if err := h.AS.WriteWord(&ctx.Env, o.VA(), packWord0(size, false, false)); err != nil {
		return err
	}
	return h.AS.WriteWord(&ctx.Env, o.VA()+16, 0)
}

// RefSlotVA returns the address of reference slot i.
func (o Object) RefSlotVA(i int) uint64 { return o.VA() + HeaderBytes + 8*uint64(i) }

// Ref reads reference slot i (charged).
func (h *Heap) Ref(ctx *machine.Context, o Object, i int) (Object, error) {
	w, err := h.AS.ReadWord(&ctx.Env, o.RefSlotVA(i))
	return Object(w), err
}

// SetRef writes reference slot i (charged), invoking the heap's write
// barrier if one is installed (generational collectors use it to maintain
// their remembered set).
func (h *Heap) SetRef(ctx *machine.Context, o Object, i int, target Object) error {
	if h.Barrier != nil {
		h.Barrier(ctx, o, i, target)
	}
	return h.AS.WriteWord(&ctx.Env, o.RefSlotVA(i), target.VA())
}

// PayloadVA returns the address of the payload given the object's
// reference-slot count (callers that know their class layout can compute
// it without a charged meta read).
func (o Object) PayloadVA(numRefs int) uint64 {
	return o.VA() + HeaderBytes + 8*uint64(numRefs)
}

// ReadPayload reads len(p) payload bytes starting at byte offset off
// (charged bulk read). numRefs must match the object's layout.
func (h *Heap) ReadPayload(ctx *machine.Context, o Object, numRefs, off int, p []byte) error {
	return h.AS.Read(&ctx.Env, o.PayloadVA(numRefs)+uint64(off), p)
}

// WritePayload writes p into the payload at byte offset off (charged).
func (h *Heap) WritePayload(ctx *machine.Context, o Object, numRefs, off int, p []byte) error {
	return h.AS.Write(&ctx.Env, o.PayloadVA(numRefs)+uint64(off), p)
}

// ReadPayloadWord reads the 8-byte payload word at byte offset off.
func (h *Heap) ReadPayloadWord(ctx *machine.Context, o Object, numRefs, off int) (uint64, error) {
	return h.AS.ReadWord(&ctx.Env, o.PayloadVA(numRefs)+uint64(off))
}

// WritePayloadWord writes the 8-byte payload word at byte offset off.
func (h *Heap) WritePayloadWord(ctx *machine.Context, o Object, numRefs, off int, v uint64) error {
	return h.AS.WriteWord(&ctx.Env, o.PayloadVA(numRefs)+uint64(off), v)
}
