package heap

import (
	"fmt"
	"sort"

	"repro/internal/mem"
)

// Shadow verification for compacting collectors. A collector captures a
// ShadowDigest between its adjust and compact phases — when every live
// object's forwarding address and final reference values are in place —
// and verifies it after compaction. The check is host-side and uncharged:
// it reads raw memory only, so enabling it never perturbs simulated
// figures. It catches exactly the damage a faulty (or faultily recovered)
// move could do: a half-moved object, a stale mark/forwarding word, bytes
// that differ from the source, and frames leaked or double-mapped by a
// bad PTE rollback.

// shadowObj records where one live object must land and what it must
// contain when it gets there.
type shadowObj struct {
	dest  uint64 // forwarding address (== source VA when not moving)
	size  int
	word1 uint64 // refs/class/age word, invariant across the move
	sum   uint64 // FNV-1a over the body [src+HeaderBytes, src+size)
}

// ShadowDigest is the pre-compaction snapshot VerifyShadow checks against.
type ShadowDigest struct {
	from   uint64
	objs   []shadowObj
	frames []mem.FrameID // sorted multiset backing the whole heap
}

// Objects returns the number of live objects captured.
func (s *ShadowDigest) Objects() int { return len(s.objs) }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// bodySum digests [va, va+n) from raw memory in bounded chunks.
func (h *Heap) bodySum(va uint64, n int) (uint64, error) {
	sum := uint64(fnvOffset)
	var buf [4096]byte
	for n > 0 {
		c := n
		if c > len(buf) {
			c = len(buf)
		}
		if err := h.AS.RawRead(va, buf[:c]); err != nil {
			return 0, err
		}
		for _, b := range buf[:c] {
			sum = (sum ^ uint64(b)) * fnvPrime
		}
		va += uint64(c)
		n -= c
	}
	return sum, nil
}

// rawWord reads one raw little-endian word.
func (h *Heap) rawWord(va uint64) (uint64, error) {
	var w [8]byte
	if err := h.AS.RawRead(va, w[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(w[i])
	}
	return v, nil
}

// frameSnapshot returns the sorted multiset of frames backing the heap.
func (h *Heap) frameSnapshot() ([]mem.FrameID, error) {
	frames := make([]mem.FrameID, 0, (h.end-h.start)>>mem.PageShift)
	for va := h.start; va < h.end; va += mem.PageSize {
		f, ok := h.AS.Lookup(va)
		if !ok {
			return nil, fmt.Errorf("heap: page %#x unmapped", va)
		}
		frames = append(frames, f)
	}
	sort.Slice(frames, func(i, j int) bool { return frames[i] < frames[j] })
	return frames, nil
}

// CaptureShadow walks [from, top) raw and records, for every marked
// object, its forwarding destination, metadata word, and a digest of its
// body bytes — plus the frame multiset of the entire heap. Collectors
// call it after the adjust phase: reference slots then already hold their
// final values, so each body travels to its destination bit-identically.
func (h *Heap) CaptureShadow(from, top uint64) (*ShadowDigest, error) {
	s := &ShadowDigest{from: from}
	cur := from
	for cur < top {
		w0, err := h.rawWord(cur)
		if err != nil {
			return nil, err
		}
		size := int(w0 & sizeMask)
		if size < MinFillerBytes || cur+uint64(size) > top {
			return nil, fmt.Errorf("heap: shadow capture: corrupt header at %#x (size %d)", cur, size)
		}
		if w0&fillerBit == 0 && w0&markBit != 0 {
			w1, err := h.rawWord(cur + 8)
			if err != nil {
				return nil, err
			}
			dest, err := h.rawWord(cur + 16)
			if err != nil {
				return nil, err
			}
			if dest == 0 {
				return nil, fmt.Errorf("heap: shadow capture: marked object %#x has no forwarding", cur)
			}
			sum, err := h.bodySum(cur+HeaderBytes, size-HeaderBytes)
			if err != nil {
				return nil, err
			}
			s.objs = append(s.objs, shadowObj{dest: dest, size: size, word1: w1, sum: sum})
		}
		cur += uint64(size)
	}
	var err error
	s.frames, err = h.frameSnapshot()
	return s, err
}

// VerifyShadow checks the post-compaction heap against a captured digest:
// the range is walkable, every captured object sits at its forwarding
// address with a clean header (mark and forwarding cleared, size and
// metadata intact) and a bit-identical body, live objects tile the
// compacted prefix in capture order, and the heap's frame multiset is
// unchanged with no frame mapped twice.
func (h *Heap) VerifyShadow(s *ShadowDigest, newTop uint64) error {
	if err := h.VerifyWalkable(); err != nil {
		return fmt.Errorf("post-GC heap not walkable: %w", err)
	}
	prevEnd := s.from
	for i, o := range s.objs {
		if o.dest < prevEnd {
			return fmt.Errorf("post-GC: object %d at %#x overlaps previous (ends %#x)", i, o.dest, prevEnd)
		}
		if o.dest+uint64(o.size) > newTop {
			return fmt.Errorf("post-GC: object %d at %#x (size %d) beyond top %#x", i, o.dest, o.size, newTop)
		}
		w0, err := h.rawWord(o.dest)
		if err != nil {
			return err
		}
		if int(w0&sizeMask) != o.size || w0&(markBit|fillerBit) != 0 {
			return fmt.Errorf("post-GC: object at %#x has dirty header %#x (want clean size %d)", o.dest, w0, o.size)
		}
		w1, err := h.rawWord(o.dest + 8)
		if err != nil {
			return err
		}
		if w1 != o.word1 {
			return fmt.Errorf("post-GC: object at %#x metadata %#x != captured %#x", o.dest, w1, o.word1)
		}
		w2, err := h.rawWord(o.dest + 16)
		if err != nil {
			return err
		}
		if w2 != 0 {
			return fmt.Errorf("post-GC: object at %#x has unresolved forwarding %#x", o.dest, w2)
		}
		sum, err := h.bodySum(o.dest+HeaderBytes, o.size-HeaderBytes)
		if err != nil {
			return err
		}
		if sum != o.sum {
			return fmt.Errorf("post-GC: object at %#x body digest %#x != captured %#x (corrupted move)", o.dest, sum, o.sum)
		}
		prevEnd = o.dest + uint64(o.size)
	}
	frames, err := h.frameSnapshot()
	if err != nil {
		return err
	}
	if len(frames) != len(s.frames) {
		return fmt.Errorf("post-GC: heap backed by %d frames, captured %d", len(frames), len(s.frames))
	}
	for i := range frames {
		if frames[i] != s.frames[i] {
			return fmt.Errorf("post-GC: frame multiset changed (leaked or foreign frame %d)", frames[i])
		}
		if i > 0 && frames[i] == frames[i-1] {
			return fmt.Errorf("post-GC: frame %d double-mapped", frames[i])
		}
	}
	return nil
}
