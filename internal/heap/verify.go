package heap

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/mmu"
)

// Shadow verification for compacting collectors. A collector captures a
// ShadowDigest between its adjust and compact phases — when every live
// object's forwarding address and final reference values are in place —
// and verifies it after compaction. The check is host-side and uncharged:
// it reads raw memory only, so enabling it never perturbs simulated
// figures. It catches exactly the damage a faulty (or faultily recovered)
// move could do: a half-moved object, a stale mark/forwarding word, bytes
// that differ from the source, and frames leaked or double-mapped by a
// bad PTE rollback.

// shadowObj records where one live object must land and what it must
// contain when it gets there.
type shadowObj struct {
	dest  uint64 // forwarding address (== source VA when not moving)
	size  int
	word1 uint64 // refs/class/age word, invariant across the move
	sum   uint64 // FNV-1a over the body [src+HeaderBytes, src+size)
}

// pageBacking identifies what backs one heap page: a physical frame, a
// swap-tier slot, a discarded all-zero page, or (only on swap-armed,
// lazily-mapped machines) nothing yet.
type pageBacking struct {
	kind byte // 'f' frame, 's' slot, 'z' zero, 'n' none
	id   uint64
}

// ShadowDigest is the pre-compaction snapshot VerifyShadow checks against.
type ShadowDigest struct {
	from    uint64
	objs    []shadowObj
	backing []pageBacking // sorted multiset backing the whole heap
}

// Objects returns the number of live objects captured.
func (s *ShadowDigest) Objects() int { return len(s.objs) }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// bodySum digests [va, va+n) from raw memory in bounded chunks.
func (h *Heap) bodySum(va uint64, n int) (uint64, error) {
	sum := uint64(fnvOffset)
	var buf [4096]byte
	for n > 0 {
		c := n
		if c > len(buf) {
			c = len(buf)
		}
		if err := h.AS.RawRead(va, buf[:c]); err != nil {
			return 0, err
		}
		for _, b := range buf[:c] {
			sum = (sum ^ uint64(b)) * fnvPrime
		}
		va += uint64(c)
		n -= c
	}
	return sum, nil
}

// rawWord reads one raw little-endian word.
func (h *Heap) rawWord(va uint64) (uint64, error) {
	var w [8]byte
	if err := h.AS.RawRead(va, w[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(w[i])
	}
	return v, nil
}

// backingSnapshot returns the sorted multiset of page backings across
// the heap. Without a swap tier every page must be frame-backed, as
// before; with one armed, pages may live in a tier slot, be discarded
// zeros, or (heap tail, lazily mapped) have no backing yet.
func (h *Heap) backingSnapshot() ([]pageBacking, error) {
	swap := h.AS.Swapped()
	out := make([]pageBacking, 0, (h.end-h.start)>>mem.PageShift)
	for va := h.start; va < h.end; va += mem.PageSize {
		pt, i, err := h.AS.PTETableFor(va)
		if err != nil {
			if swap {
				out = append(out, pageBacking{kind: 'n'})
				continue
			}
			return nil, fmt.Errorf("heap: page %#x unmapped", va)
		}
		switch e := pt.Entry(i); {
		case e.Present:
			out = append(out, pageBacking{kind: 'f', id: uint64(e.Frame)})
		case e.State == mmu.SwapSlot:
			out = append(out, pageBacking{kind: 's', id: uint64(e.Slot)})
		case e.State == mmu.SwapZero:
			out = append(out, pageBacking{kind: 'z'})
		case swap:
			out = append(out, pageBacking{kind: 'n'})
		default:
			return nil, fmt.Errorf("heap: page %#x unmapped", va)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].kind != out[j].kind {
			return out[i].kind < out[j].kind
		}
		return out[i].id < out[j].id
	})
	return out, nil
}

// CaptureShadow walks [from, top) raw and records, for every marked
// object, its forwarding destination, metadata word, and a digest of its
// body bytes — plus the frame multiset of the entire heap. Collectors
// call it after the adjust phase: reference slots then already hold their
// final values, so each body travels to its destination bit-identically.
func (h *Heap) CaptureShadow(from, top uint64) (*ShadowDigest, error) {
	s := &ShadowDigest{from: from}
	cur := from
	for cur < top {
		w0, err := h.rawWord(cur)
		if err != nil {
			return nil, err
		}
		size := int(w0 & sizeMask)
		if size < MinFillerBytes || cur+uint64(size) > top {
			return nil, fmt.Errorf("heap: shadow capture: corrupt header at %#x (size %d)", cur, size)
		}
		if w0&fillerBit == 0 && w0&markBit != 0 {
			w1, err := h.rawWord(cur + 8)
			if err != nil {
				return nil, err
			}
			dest, err := h.rawWord(cur + 16)
			if err != nil {
				return nil, err
			}
			if dest == 0 {
				return nil, fmt.Errorf("heap: shadow capture: marked object %#x has no forwarding", cur)
			}
			sum, err := h.bodySum(cur+HeaderBytes, size-HeaderBytes)
			if err != nil {
				return nil, err
			}
			s.objs = append(s.objs, shadowObj{dest: dest, size: size, word1: w1, sum: sum})
		}
		cur += uint64(size)
	}
	var err error
	s.backing, err = h.backingSnapshot()
	return s, err
}

// VerifyShadow checks the post-compaction heap against a captured digest:
// the range is walkable, every captured object sits at its forwarding
// address with a clean header (mark and forwarding cleared, size and
// metadata intact) and a bit-identical body, live objects tile the
// compacted prefix in capture order, and the heap's frame multiset is
// unchanged with no frame mapped twice.
func (h *Heap) VerifyShadow(s *ShadowDigest, newTop uint64) error {
	if err := h.VerifyWalkable(); err != nil {
		return fmt.Errorf("post-GC heap not walkable: %w", err)
	}
	prevEnd := s.from
	for i, o := range s.objs {
		if o.dest < prevEnd {
			return fmt.Errorf("post-GC: object %d at %#x overlaps previous (ends %#x)", i, o.dest, prevEnd)
		}
		if o.dest+uint64(o.size) > newTop {
			return fmt.Errorf("post-GC: object %d at %#x (size %d) beyond top %#x", i, o.dest, o.size, newTop)
		}
		w0, err := h.rawWord(o.dest)
		if err != nil {
			return err
		}
		if int(w0&sizeMask) != o.size || w0&(markBit|fillerBit) != 0 {
			return fmt.Errorf("post-GC: object at %#x has dirty header %#x (want clean size %d)", o.dest, w0, o.size)
		}
		w1, err := h.rawWord(o.dest + 8)
		if err != nil {
			return err
		}
		if w1 != o.word1 {
			return fmt.Errorf("post-GC: object at %#x metadata %#x != captured %#x", o.dest, w1, o.word1)
		}
		w2, err := h.rawWord(o.dest + 16)
		if err != nil {
			return err
		}
		if w2 != 0 {
			return fmt.Errorf("post-GC: object at %#x has unresolved forwarding %#x", o.dest, w2)
		}
		sum, err := h.bodySum(o.dest+HeaderBytes, o.size-HeaderBytes)
		if err != nil {
			return err
		}
		if sum != o.sum {
			return fmt.Errorf("post-GC: object at %#x body digest %#x != captured %#x (corrupted move)", o.dest, sum, o.sum)
		}
		prevEnd = o.dest + uint64(o.size)
	}
	backing, err := h.backingSnapshot()
	if err != nil {
		return err
	}
	// No frame and no tier slot may back two heap pages at once — the
	// damage a bad PTE rollback does. The snapshot is sorted, so
	// duplicates are adjacent ('z' and 'n' entries carry no identity).
	for i := 1; i < len(backing); i++ {
		if backing[i] == backing[i-1] && (backing[i].kind == 'f' || backing[i].kind == 's') {
			what := "frame"
			if backing[i].kind == 's' {
				what = "tier slot"
			}
			return fmt.Errorf("post-GC: %s %d double-mapped", what, backing[i].id)
		}
	}
	if h.AS.Swapped() {
		// Residency legitimately changes across a collection on a
		// swap-armed machine (compaction faults pages in, reclaim pushes
		// them out), so the multiset comparison below would misfire; the
		// double-mapping check above is the part that survives.
		return nil
	}
	if len(backing) != len(s.backing) {
		return fmt.Errorf("post-GC: heap backed by %d pages, captured %d", len(backing), len(s.backing))
	}
	for i := range backing {
		if backing[i] != s.backing[i] {
			return fmt.Errorf("post-GC: frame multiset changed (leaked or foreign frame %d)", backing[i].id)
		}
	}
	return nil
}
