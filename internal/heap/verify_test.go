package heap

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
)

// shadowFixture allocates a few marked objects forwarded in place —
// the minimal state CaptureShadow expects (post-adjust, pre-compact).
func shadowFixture(t *testing.T) (*Heap, *machine.Context, []Object, []AllocSpec) {
	t.Helper()
	h, ctx := newHeap(t, 1<<20, core.DefaultPolicy())
	var objs []Object
	var specs []AllocSpec
	for i := 0; i < 3; i++ {
		spec := AllocSpec{NumRefs: 1, Payload: 100 + i*64, Class: uint16(i + 1)}
		o, err := h.Alloc(ctx, nil, spec)
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, spec.Payload)
		for j := range payload {
			payload[j] = byte(i*31 + j)
		}
		if err := h.WritePayload(ctx, o, spec.NumRefs, 0, payload); err != nil {
			t.Fatal(err)
		}
		if err := h.SetMark(ctx, o, true); err != nil {
			t.Fatal(err)
		}
		if err := h.SetForward(ctx, o, o); err != nil {
			t.Fatal(err)
		}
		objs = append(objs, o)
		specs = append(specs, spec)
	}
	return h, ctx, objs, specs
}

// clearAll performs the in-place "compaction": clean headers, no moves.
func clearAll(t *testing.T, h *Heap, ctx *machine.Context, objs []Object, specs []AllocSpec) {
	t.Helper()
	for i, o := range objs {
		if err := h.ClearGCBits(ctx, o, specs[i].TotalBytes()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestShadowRoundTrip(t *testing.T) {
	h, ctx, objs, specs := shadowFixture(t)
	s, err := h.CaptureShadow(h.Start(), h.Top())
	if err != nil {
		t.Fatal(err)
	}
	if s.Objects() != len(objs) {
		t.Fatalf("captured %d objects, want %d", s.Objects(), len(objs))
	}
	clearAll(t, h, ctx, objs, specs)
	if err := h.VerifyShadow(s, h.Top()); err != nil {
		t.Fatalf("clean in-place compaction rejected: %v", err)
	}
}

// TestShadowCatchesCorruption flips one property per case after capture
// and checks the verifier names the damage.
func TestShadowCatchesCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, h *Heap, ctx *machine.Context, objs []Object, specs []AllocSpec)
		want    string
	}{
		{
			name: "payload byte flipped",
			corrupt: func(t *testing.T, h *Heap, ctx *machine.Context, objs []Object, specs []AllocSpec) {
				va := objs[1].VA() + HeaderBytes + 8 + 5 // past the ref slot, into payload
				var b [1]byte
				if err := h.AS.RawRead(va, b[:]); err != nil {
					t.Fatal(err)
				}
				b[0] ^= 0x40
				if err := h.AS.RawWrite(va, b[:]); err != nil {
					t.Fatal(err)
				}
			},
			want: "body digest",
		},
		{
			name: "mark bit left set",
			corrupt: func(t *testing.T, h *Heap, ctx *machine.Context, objs []Object, specs []AllocSpec) {
				if err := h.SetMark(ctx, objs[2], true); err != nil {
					t.Fatal(err)
				}
			},
			want: "dirty header",
		},
		{
			name: "forwarding left unresolved",
			corrupt: func(t *testing.T, h *Heap, ctx *machine.Context, objs []Object, specs []AllocSpec) {
				if err := h.SetForward(ctx, objs[0], objs[0]); err != nil {
					t.Fatal(err)
				}
			},
			want: "unresolved forwarding",
		},
		{
			name: "metadata word changed",
			corrupt: func(t *testing.T, h *Heap, ctx *machine.Context, objs []Object, specs []AllocSpec) {
				var w [8]byte
				w[0] = 0xff
				if err := h.AS.RawWrite(objs[1].VA()+8, w[:]); err != nil {
					t.Fatal(err)
				}
			},
			want: "metadata",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h, ctx, objs, specs := shadowFixture(t)
			s, err := h.CaptureShadow(h.Start(), h.Top())
			if err != nil {
				t.Fatal(err)
			}
			clearAll(t, h, ctx, objs, specs)
			c.corrupt(t, h, ctx, objs, specs)
			err = h.VerifyShadow(s, h.Top())
			if err == nil {
				t.Fatal("verifier accepted a corrupted heap")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestShadowCaptureRequiresForwarding: a marked object with a null
// forwarding word is a collector bug CaptureShadow must refuse.
func TestShadowCaptureRequiresForwarding(t *testing.T) {
	h, ctx := newHeap(t, 1<<20, core.DefaultPolicy())
	o, err := h.Alloc(ctx, nil, AllocSpec{Payload: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetMark(ctx, o, true); err != nil {
		t.Fatal(err)
	}
	if _, err := h.CaptureShadow(h.Start(), h.Top()); err == nil ||
		!strings.Contains(err.Error(), "no forwarding") {
		t.Fatalf("capture of marked-but-unforwarded object: %v", err)
	}
}
