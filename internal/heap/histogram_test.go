package heap

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestHistogramAggregates(t *testing.T) {
	h, ctx := newHeap(t, 8<<20, core.DefaultPolicy())
	for i := 0; i < 5; i++ {
		if _, err := h.AllocShared(ctx, AllocSpec{Payload: 1000, Class: 7}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := h.AllocShared(ctx, AllocSpec{Payload: 11 * 4096, Class: 9}); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := h.Histogram(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byClass := map[uint16]ClassStat{}
	for _, s := range stats {
		byClass[s.Class] = s
	}
	if got := byClass[7]; got.Objects != 5 || got.Bytes != 5*int64(AllocSpec{Payload: 1000}.TotalBytes()) {
		t.Errorf("class 7: %+v", got)
	}
	if got := byClass[9]; got.Objects != 2 {
		t.Errorf("class 9: %+v", got)
	}
	// The large objects produced alignment fillers.
	if byClass[0].Objects == 0 {
		t.Error("no filler row despite page alignment")
	}
	// Sorted by bytes descending: class 9 (large) must come first.
	if stats[0].Class != 9 {
		t.Errorf("stats[0] = %+v, want class 9 first", stats[0])
	}
	out := FormatHistogram(stats)
	for _, want := range []string{"(filler)", "total", "class"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted histogram missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramEmptyHeap(t *testing.T) {
	h, ctx := newHeap(t, 1<<20, core.DefaultPolicy())
	stats, err := h.Histogram(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 0 {
		t.Errorf("empty heap histogram: %+v", stats)
	}
}
