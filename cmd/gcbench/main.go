// Command gcbench regenerates the paper's evaluation artifacts: every
// figure and table has an experiment ID (fig1..fig16, table1..table3).
//
// Usage:
//
//	gcbench -exp fig11            # one experiment
//	gcbench -exp all              # everything, in paper order
//	gcbench -exp fig12 -quick     # reduced sweep for a fast look
//	gcbench -list                 # available experiment IDs
//	gcbench -exp fig10 -machine gold6240
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment ID (fig1..fig16, table1..table3) or 'all'")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		quick    = flag.Bool("quick", false, "reduced sweeps and benchmark subset")
		mach     = flag.String("machine", "", "cost model override (gold6130, gold6240, i5-7600)")
		workers  = flag.Int("gcworkers", 4, "GC threads per JVM")
		seed     = flag.Int64("seed", 42, "workload seed")
		traceOut = flag.String("trace", "", "write a combined Chrome trace_event JSON of every workload machine (disables run memoisation)")
		metrics  = flag.String("metrics", "", "write a combined Prometheus text-format metrics snapshot (disables run memoisation)")
		sockets  = flag.Int("sockets", 1, "sockets (NUMA nodes) the simulated cores are split over")
		numaPol  = flag.String("numa-policy", "", "page placement on multi-socket machines: first-touch, interleave, or bind[:N]")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "gcbench: -exp is required (try -list)")
		os.Exit(2)
	}

	policy, bind, err := topology.ParsePolicy(*numaPol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gcbench:", err)
		os.Exit(2)
	}
	opt := bench.Options{Quick: *quick, GCWorkers: *workers, Seed: *seed,
		Sockets: *sockets, NUMAPolicy: policy, NUMABind: bind}
	var tracers []*trace.Tracer
	if *traceOut != "" || *metrics != "" {
		opt.OnMachine = func(m *machine.Machine) {
			tracers = append(tracers, m.EnableTracing(0))
		}
	}
	if *mach != "" {
		cost, err := sim.ModelByName(*mach)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gcbench:", err)
			os.Exit(2)
		}
		opt.Cost = cost
	}

	var exps []*bench.Experiment
	if *exp == "all" {
		exps = bench.Registry()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := bench.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, "gcbench:", err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	for _, e := range exps {
		start := time.Now()
		res, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Print(res.Format())
		fmt.Printf("(%s regenerated in %.1fs wall)\n\n", e.ID, time.Since(start).Seconds())
	}

	if *traceOut != "" {
		if err := writeFile(*traceOut, trace.ChromeTraceOf(tracers...).Write); err != nil {
			fmt.Fprintln(os.Stderr, "gcbench: trace:", err)
			os.Exit(1)
		}
	}
	if *metrics != "" {
		if err := writeFile(*metrics, trace.SnapshotOf(tracers...).WritePrometheus); err != nil {
			fmt.Fprintln(os.Stderr, "gcbench: metrics:", err)
			os.Exit(1)
		}
	}
}

// writeFile streams write into path, closing cleanly on error.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
