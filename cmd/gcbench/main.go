// Command gcbench regenerates the paper's evaluation artifacts: every
// figure and table has an experiment ID (fig1..fig16, table1..table3).
//
// Usage:
//
//	gcbench -exp fig11            # one experiment
//	gcbench -exp all              # everything, in paper order
//	gcbench -exp fig12 -quick     # reduced sweep for a fast look
//	gcbench -list                 # available experiment IDs
//	gcbench -exp fig10 -machine gold6240
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/swaptier"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment ID (fig1..fig16, table1..table3) or 'all'")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		quick    = flag.Bool("quick", false, "reduced sweeps and benchmark subset")
		mach     = flag.String("machine", "", "cost model override (gold6130, gold6240, i5-7600)")
		workers  = flag.Int("gcworkers", 4, "GC threads per JVM")
		seed     = flag.Int64("seed", 42, "workload seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "host worker pool for independent workload runs (1 = serial; -trace/-metrics force serial). Output is byte-identical at any setting")
		traceOut = flag.String("trace", "", "write a combined Chrome trace_event JSON of every workload machine (disables run memoisation and host parallelism)")
		metrics  = flag.String("metrics", "", "write a combined Prometheus text-format metrics snapshot (disables run memoisation and host parallelism)")
		sockets  = flag.Int("sockets", 1, "sockets (NUMA nodes) the simulated cores are split over")
		numaPol  = flag.String("numa-policy", "", "page placement on multi-socket machines: first-touch, interleave, or bind[:N]")
		faultPln = flag.String("fault-plan", "", "fault-injection plan: comma-separated site=rate (sites: pte-lock, ipi-ack, swapva, poison, interconnect, far-write, all), e.g. 'swapva=0.01,poison=1e-4'")
		faultRt  = flag.Float64("fault-rate", 0, "uniform fault rate applied to every site (per-site -fault-plan entries override it)")
		faultSd  = flag.Int64("fault-seed", 0, "fault-injection seed; the same seed and plan replay the identical fault sequence (0 = workload seed)")
		exact    = flag.Bool("exact", false, "force exact per-word cost charging instead of epoch-batched run settlement (bit-identical output, slower host runtime; exists for parity checking)")
		swapTier = flag.Int64("swap-tier", 0, "far (NVMe) swap-tier capacity in MiB for the far-memory figures, e.g. oversub1 (0 with -zpool 0 = each figure's built-in tier)")
		zpool    = flag.Int64("zpool", 0, "compressed-RAM zpool budget in MiB in front of the far tier")
		farLat   = flag.Int64("far-lat", 0, "far-device access latency in ns (0 = default 10000)")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
		memProf  = flag.String("memprofile", "", "write a pprof allocation profile (after the run) to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "gcbench: -exp is required (try -list)")
		os.Exit(2)
	}

	policy, bind, err := topology.ParsePolicy(*numaPol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gcbench:", err)
		os.Exit(2)
	}
	opt := bench.Options{Quick: *quick, GCWorkers: *workers, Seed: *seed,
		Sockets: *sockets, NUMAPolicy: policy, NUMABind: bind,
		Parallel:  *parallel,
		FaultPlan: *faultPln, FaultRate: *faultRt, FaultSeed: *faultSd,
		Swap:  swaptier.Config{FarBytes: *swapTier << 20, ZpoolBytes: *zpool << 20, FarLatNs: sim.Time(*farLat)},
		Exact: *exact}
	if _, err := opt.FaultInjector(); err != nil {
		fmt.Fprintln(os.Stderr, "gcbench:", err)
		os.Exit(2)
	}
	if opt.Swap.Enabled() {
		if err := opt.Swap.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "gcbench:", err)
			os.Exit(2)
		}
	}
	var tracers []*trace.Tracer
	if *traceOut != "" || *metrics != "" {
		opt.OnMachine = func(m *machine.Machine) {
			tracers = append(tracers, m.EnableTracing(0))
		}
	}
	if *mach != "" {
		cost, err := sim.ModelByName(*mach)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gcbench:", err)
			os.Exit(2)
		}
		opt.Cost = cost
	}

	var exps []*bench.Experiment
	if *exp == "all" {
		exps = bench.Registry()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := bench.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, "gcbench:", err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gcbench: cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "gcbench: cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	// Tables go to stdout and nothing else does: stdout is byte-comparable
	// across -parallel settings (the CI smoke step diffs it). Timing and
	// the simulation-rate summary go to stderr.
	wallStart := time.Now()
	bench.RunExperiments(opt, exps, func(i int, res *bench.Result, err error, wall float64) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: %s: %v\n", exps[i].ID, err)
			os.Exit(1)
		}
		fmt.Print(res.Format())
		fmt.Println()
		fmt.Fprintf(os.Stderr, "(%s regenerated in %.1fs wall)\n", exps[i].ID, wall)
	})
	wall := time.Since(wallStart).Seconds()
	runs, simNs := bench.HarnessStats()
	fmt.Fprintf(os.Stderr,
		"harness: %d workload runs, %.3fs simulated in %.1fs wall — %.0f sim-ns/host-ms, %.2f runs/s, parallel=%d\n",
		runs, simNs.Seconds(), wall, float64(simNs)/(wall*1e3), float64(runs)/wall, *parallel)

	if *traceOut != "" {
		if err := writeFile(*traceOut, trace.ChromeTraceOf(tracers...).Write); err != nil {
			fmt.Fprintln(os.Stderr, "gcbench: trace:", err)
			os.Exit(1)
		}
	}
	if *metrics != "" {
		if err := writeFile(*metrics, trace.SnapshotOf(tracers...).WritePrometheus); err != nil {
			fmt.Fprintln(os.Stderr, "gcbench: metrics:", err)
			os.Exit(1)
		}
	}
	if *memProf != "" {
		runtime.GC() // fold transient garbage so the profile shows live + cumulative allocs honestly
		if err := writeFile(*memProf, func(w io.Writer) error {
			return pprof.Lookup("allocs").WriteTo(w, 0)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "gcbench: memprofile:", err)
			os.Exit(1)
		}
	}
}

// writeFile streams write into path, closing cleanly on error.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
