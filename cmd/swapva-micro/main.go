// Command swapva-micro runs the SwapVA microbenchmarks standalone — the
// system-call-level experiments of Figs. 6, 8, 9 and 10, plus the
// huge-swap extension (ext3) — without the GC or workload machinery.
//
// Usage:
//
//	swapva-micro                  # all five microbenchmarks
//	swapva-micro -exp fig10       # just the threshold sweep
//	swapva-micro -machine i5-7600
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/sim"
)

var microIDs = []string{"fig6", "fig8", "fig9", "fig10", "ext3"}

func main() {
	var (
		exp     = flag.String("exp", "", "microbenchmark ID (fig6, fig8, fig9, fig10, ext3); empty = all")
		quick   = flag.Bool("quick", false, "reduced sweeps")
		machine = flag.String("machine", "", "cost model override (gold6130, gold6240, i5-7600)")
	)
	flag.Parse()

	opt := bench.Options{Quick: *quick}
	if *machine != "" {
		cost, err := sim.ModelByName(*machine)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swapva-micro:", err)
			os.Exit(2)
		}
		opt.Cost = cost
	}

	ids := microIDs
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		ok := false
		for _, m := range microIDs {
			if id == m {
				ok = true
			}
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "swapva-micro: %q is not a microbenchmark (want one of %v)\n", id, microIDs)
			os.Exit(2)
		}
		e, err := bench.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swapva-micro:", err)
			os.Exit(2)
		}
		res, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swapva-micro: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(res.Format())
		fmt.Println()
	}
}
