// Command swapva-micro runs the SwapVA microbenchmarks standalone — the
// system-call-level experiments of Figs. 6, 8, 9 and 10, plus the
// huge-swap extension (ext3) — without the GC or workload machinery.
//
// Usage:
//
//	swapva-micro                  # all five microbenchmarks
//	swapva-micro -exp fig10       # just the threshold sweep
//	swapva-micro -machine i5-7600
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/sim"
)

var microIDs = []string{"fig6", "fig8", "fig9", "fig10", "ext3"}

func main() {
	var (
		exp     = flag.String("exp", "", "microbenchmark ID (fig6, fig8, fig9, fig10, ext3); empty = all")
		quick   = flag.Bool("quick", false, "reduced sweeps")
		machine = flag.String("machine", "", "cost model override (gold6130, gold6240, i5-7600)")
	)
	flag.Parse()

	opt := bench.Options{Quick: *quick}
	if *machine != "" {
		cost, err := sim.ModelByName(*machine)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swapva-micro:", err)
			os.Exit(2)
		}
		opt.Cost = cost
	}

	ids := microIDs
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	}
	wallStart := time.Now()
	for _, id := range ids {
		id = strings.TrimSpace(id)
		ok := false
		for _, m := range microIDs {
			if id == m {
				ok = true
			}
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "swapva-micro: %q is not a microbenchmark (want one of %v)\n", id, microIDs)
			os.Exit(2)
		}
		e, err := bench.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swapva-micro:", err)
			os.Exit(2)
		}
		res, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swapva-micro: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(res.Format())
		fmt.Println()
	}
	// The same simulation-rate line gcbench prints for workload runs,
	// over the microbenchmark episodes, so micro and macro throughput
	// numbers are directly comparable. Stderr, like gcbench: stdout
	// stays byte-comparable across hosts.
	wall := time.Since(wallStart).Seconds()
	runs, simNs := bench.MicroStats()
	fmt.Fprintf(os.Stderr,
		"harness: %d micro episodes, %.3fs simulated in %.1fs wall — %.0f sim-ns/host-ms, %.2f episodes/s\n",
		runs, simNs.Seconds(), wall, float64(simNs)/(wall*1e3), float64(runs)/wall)
}
