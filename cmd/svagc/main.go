// Command svagc runs one Table II workload under a chosen collector and
// prints its GC and application statistics — the interactive entry point
// for exploring the system.
//
// Usage:
//
//	svagc -bench Sigverify                       # SVAGC, 1.2x min heap
//	svagc -bench Sparse.large/4 -gc parallelgc
//	svagc -bench LRUCache -gc svagc -jvms 32     # modelled co-running JVMs
//	svagc -bench FFT.large -heap 2.0 -threshold 16
//	svagc -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/gc"
	"repro/internal/gc/svagc"
	"repro/internal/heap"
	"repro/internal/jvm"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	var (
		benchName = flag.String("bench", "", "workload name (see -list)")
		collector = flag.String("gc", jvm.CollectorSVAGC, "collector: svagc, svagc-memmove, parallelgc, shenandoah, parallelgc-swapva, shenandoah-swapva")
		factor    = flag.Float64("heap", 1.2, "heap size as a factor of the workload's minimum")
		workers   = flag.Int("gcworkers", 4, "GC threads")
		jvms      = flag.Int("jvms", 1, "modelled co-running JVM count")
		threshold = flag.Int("threshold", 0, "SwapVA threshold override in pages (svagc only)")
		mach      = flag.String("machine", "gold6130", "cost model (gold6130, gold6240, i5-7600)")
		seed      = flag.Int64("seed", 42, "workload seed")
		list      = flag.Bool("list", false, "list workloads and exit")
		pauses    = flag.Bool("pauses", false, "print every pause record")
		gclog     = flag.Bool("gclog", false, "stream -Xlog:gc style lines to stderr as pauses happen")
		histo     = flag.Bool("histo", false, "print a class histogram of the final heap (jmap -histo style)")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event JSON file of the run (load in chrome://tracing or Perfetto)")
		metrics   = flag.String("metrics", "", "write a Prometheus text-format metrics snapshot of the run")
		spillOut  = flag.String("trace-spill", "", "stream trace events to this file as JSON lines when ring buffers fill (implies tracing; nothing is dropped)")
		traceBuf  = flag.Int("trace-buf", 0, "trace ring size in events per context (0 = default 8192; with -trace-spill this is the flush batch size)")
		sockets   = flag.Int("sockets", 1, "sockets (NUMA nodes) the simulated cores are split over")
		numaPol   = flag.String("numa-policy", "", "page placement on multi-socket machines: first-touch, interleave, or bind[:N]")
		numaGC    = flag.String("numa-gc", "", "GC worker placement on multi-socket machines: spread or local")
	)
	flag.Parse()

	if *list {
		for _, s := range workloads.Registry() {
			fmt.Printf("%-16s %-12s paper: %4d threads, %s; scaled: %d threads, %.1f MiB min heap\n",
				s.Name, s.Suite, s.PaperThreads, s.PaperHeap, s.Threads, float64(s.MinHeapBytes)/(1<<20))
		}
		return
	}
	if *benchName == "" {
		fmt.Fprintln(os.Stderr, "svagc: -bench is required (try -list)")
		os.Exit(2)
	}
	spec, err := workloads.ByName(*benchName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "svagc:", err)
		os.Exit(2)
	}
	cost, err := sim.ModelByName(*mach)
	if err != nil {
		fmt.Fprintln(os.Stderr, "svagc:", err)
		os.Exit(2)
	}
	policy, bind, err := topology.ParsePolicy(*numaPol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "svagc:", err)
		os.Exit(2)
	}
	place, err := gc.ParsePlacement(*numaGC)
	if err != nil {
		fmt.Fprintln(os.Stderr, "svagc:", err)
		os.Exit(2)
	}
	m, err := machine.New(machine.Config{
		Cost:       cost,
		Sockets:    *sockets,
		NUMAPolicy: policy,
		NUMABind:   bind,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "svagc:", err)
		os.Exit(1)
	}
	if *jvms > 1 {
		m.SetActiveJVMs(*jvms)
	}
	var tr *trace.Tracer
	if *traceOut != "" || *metrics != "" || *spillOut != "" {
		tr = m.EnableTracing(*traceBuf)
	}
	var spillFile *os.File
	if *spillOut != "" {
		spillFile, err = os.Create(*spillOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "svagc: trace-spill:", err)
			os.Exit(1)
		}
		tr.SetSpill(spillFile)
	}

	heapBytes := spec.MinHeap(*factor)
	var cfg jvm.Config
	if (*threshold > 0 || place != gc.PlaceSpread) && *collector == jvm.CollectorSVAGC {
		sc := svagc.Config{Workers: *workers, ThresholdPages: *threshold, Placement: place}
		cfg = jvm.Config{
			HeapBytes: heapBytes,
			Threads:   spec.Threads,
			Policy:    svagc.Policy(sc),
			NewCollector: func(h *heap.Heap, roots *gc.RootSet) gc.Collector {
				return svagc.New(h, roots, sc)
			},
		}
	} else {
		var ok bool
		cfg, ok = jvm.ConfigFor(*collector, heapBytes, spec.Threads, *workers)
		if !ok {
			fmt.Fprintf(os.Stderr, "svagc: unknown collector %q (want %v)\n", *collector, jvm.CollectorNames())
			os.Exit(2)
		}
	}

	j, err := jvm.New(m, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "svagc:", err)
		os.Exit(1)
	}
	if *gclog {
		j.WithGCLog(os.Stderr)
	}
	if err := spec.Run(j, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "svagc:", err)
		os.Exit(1)
	}

	st := j.GC.Stats()
	fmt.Printf("%s under %s on %s (%.1fx min heap = %.1f MiB, %d mutator threads, %d GC workers, %d JVMs)\n",
		spec.Name, j.GC.Name(), cost.Name, *factor, float64(heapBytes)/(1<<20), spec.Threads, *workers, *jvms)
	fmt.Printf("  app time           %v (mutator %v + pauses %v + concurrent GC %v)\n",
		j.AppTime(), j.MutatorTime(), j.GCPauseTime(), j.GCConcurrentTime())
	fmt.Printf("  collections        %d full, %d minor\n", st.Count(gc.KindFull), st.Count(gc.KindMinor))
	fmt.Printf("  pause total/max    %v / %v\n", st.TotalPause(""), st.MaxPause(""))
	pt := st.PhaseTotals(gc.KindFull)
	fmt.Printf("  full-GC phases     mark %v, forward %v, adjust %v, compact %v\n",
		pt.Mark, pt.Forward, pt.Adjust, pt.Compact)
	p := j.TotalPerf()
	fmt.Printf("  moving             %d pages swapped in %d SwapVA calls; %d bytes memmoved\n",
		p.PagesSwapped, p.SwapVACalls, p.BytesCopied)
	fmt.Printf("  perf               %s\n", p.String())
	if m.Nodes() > 1 {
		fmt.Printf("  numa               %s, %d/%d remote/local accesses, %d remote B, %d remote IPIs, %d cross-node swaps\n",
			m.Topology(), p.NUMARemote, p.NUMALocal, p.NUMARemoteBytes, p.IPIsRemote, p.CrossNodeSwaps)
	}
	if *pauses {
		for i := range st.Pauses {
			fmt.Printf("  pause[%d] %s\n", i, st.Pauses[i].String())
		}
	}
	if *histo {
		// A final full collection compacts the heap so the histogram
		// reports live objects only (plus alignment fillers).
		if _, err := j.CollectNow(); err != nil {
			fmt.Fprintln(os.Stderr, "svagc: final collection:", err)
			os.Exit(1)
		}
		stats, err := j.Heap.Histogram(j.Thread(0).Ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "svagc: histogram:", err)
			os.Exit(1)
		}
		fmt.Println("live-heap class histogram:")
		fmt.Print(heap.FormatHistogram(stats))
	}
	if *traceOut != "" {
		if err := writeFile(*traceOut, tr.WriteChromeJSON); err != nil {
			fmt.Fprintln(os.Stderr, "svagc: trace:", err)
			os.Exit(1)
		}
	}
	if *metrics != "" {
		if err := writeFile(*metrics, trace.SnapshotOf(tr).WritePrometheus); err != nil {
			fmt.Fprintln(os.Stderr, "svagc: metrics:", err)
			os.Exit(1)
		}
	}
	if spillFile != nil {
		if err := tr.SpillErr(); err != nil {
			fmt.Fprintln(os.Stderr, "svagc: trace-spill:", err)
			os.Exit(1)
		}
		if err := spillFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "svagc: trace-spill:", err)
			os.Exit(1)
		}
		fmt.Printf("  trace-spill        %d events streamed to %s\n", tr.Spilled(), *spillOut)
	}
}

// writeFile streams write into path, closing cleanly on error.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
