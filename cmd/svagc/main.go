// Command svagc runs one Table II workload under a chosen collector and
// prints its GC and application statistics — the interactive entry point
// for exploring the system. -bench also accepts a comma-separated list,
// which fans the runs out over a bounded host worker pool (-parallel) and
// prints the reports in input order.
//
// Usage:
//
//	svagc -bench Sigverify                       # SVAGC, 1.2x min heap
//	svagc -bench Sparse.large/4 -gc parallelgc
//	svagc -bench LRUCache -gc svagc -jvms 32     # modelled co-running JVMs
//	svagc -bench FFT.large -heap 2.0 -threshold 16
//	svagc -bench Sigverify,CryptoAES,Bisort      # parallel multi-run
//	svagc -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/gc"
	"repro/internal/gc/svagc"
	"repro/internal/heap"
	"repro/internal/jvm"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/soak"
	"repro/internal/swaptier"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workloads"
	"repro/internal/workloads/smr"
)

func main() {
	var (
		benchName = flag.String("bench", "", "workload name, or a comma-separated list to fan out (see -list)")
		collector = flag.String("gc", jvm.CollectorSVAGC, "collector: svagc, svagc-memmove, parallelgc, shenandoah, parallelgc-swapva, shenandoah-swapva, copygc")
		factor    = flag.Float64("heap", 1.2, "heap size as a factor of the workload's minimum")
		workers   = flag.Int("gcworkers", 4, "GC threads")
		jvms      = flag.Int("jvms", 1, "modelled co-running JVM count")
		threshold = flag.Int("threshold", 0, "SwapVA threshold override in pages (svagc only)")
		mach      = flag.String("machine", "gold6130", "cost model (gold6130, gold6240, i5-7600)")
		seed      = flag.Int64("seed", 42, "workload seed")
		list      = flag.Bool("list", false, "list workloads and exit")
		pauses    = flag.Bool("pauses", false, "print every pause record")
		gclog     = flag.Bool("gclog", false, "stream -Xlog:gc style lines to stderr as pauses happen")
		histo     = flag.Bool("histo", false, "print a class histogram of the final heap (jmap -histo style)")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event JSON file of the run (load in chrome://tracing or Perfetto)")
		metrics   = flag.String("metrics", "", "write a Prometheus text-format metrics snapshot of the run")
		spillOut  = flag.String("trace-spill", "", "stream trace events to this file as JSON lines when ring buffers fill (implies tracing; nothing is dropped)")
		traceBuf  = flag.Int("trace-buf", 0, "trace ring size in events per context (0 = default 8192; with -trace-spill this is the flush batch size)")
		sockets   = flag.Int("sockets", 1, "sockets (NUMA nodes) the simulated cores are split over")
		numaPol   = flag.String("numa-policy", "", "page placement on multi-socket machines: first-touch, interleave, or bind[:N]")
		numaGC    = flag.String("numa-gc", "", "GC worker placement on multi-socket machines: spread or local")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "host worker pool when -bench lists several workloads (1 = serial)")
		faultPln  = flag.String("fault-plan", "", "fault-injection plan: comma-separated site=rate (sites: pte-lock, ipi-ack, swapva, poison, interconnect, far-write, all), e.g. 'swapva=0.01,poison=1e-4'")
		faultRt   = flag.Float64("fault-rate", 0, "uniform fault rate applied to every site (per-site -fault-plan entries override it)")
		faultSd   = flag.Int64("fault-seed", 0, "fault-injection seed; the same seed and plan replay the identical fault sequence (0 = workload seed)")
		watchdogD = flag.Duration("watchdog", 0, "arm the GC watchdog: abort with diagnostics when a phase exceeds this simulated duration (svagc, svagc-memmove, copygc)")
		soakDur   = flag.Duration("soak", 0, "run the memory-pressure soak loop for this host duration instead of a workload (uses -gc, -gcworkers, -seed, -watchdog, and the swap-tier knobs)")
		swapTier  = flag.Int64("swap-tier", 0, "far (NVMe) swap-tier capacity in MiB; arms the far-memory swap plane on the simulated machine (0 with -zpool 0 = disabled, the bit-exact historical simulator)")
		zpool     = flag.Int64("zpool", 0, "compressed-RAM zpool budget in MiB in front of the far tier")
		farLat    = flag.Int64("far-lat", 0, "far-device access latency in ns (0 = default 10000)")
		physMiB   = flag.Int64("phys", 0, "bound the simulated machine's physical RAM in MiB (0 = unbounded; required with the swap-tier knobs in workload mode — the soak loop sizes its own pool)")
		tenants   = flag.Int("tenants", 0, "tenant count: replicas for -smr, concurrent capped tenants for -soak (0 = single-tenant)")
		tenantCap = flag.Int64("tenant-cap", 0, "per-tenant memory cap in MiB; in workload mode the JVM runs as a capped tenant with its own pressure ladder (0 = uncapped)")
		gcArb     = flag.Int("gc-arbiter", 0, "arm the machine-wide GC arbiter with this concurrent-collection bound (0 = unarbitrated)")
		smrHeap   = flag.Int64("smr", 0, "run the raft-style SMR cluster workload with this replica heap size in MiB instead of a -bench workload (uses -gc, -gcworkers, -seed, -tenants, -tenant-cap, -gc-arbiter)")
	)
	flag.Parse()

	swapCfg := swaptier.Config{FarBytes: *swapTier << 20, ZpoolBytes: *zpool << 20, FarLatNs: sim.Time(*farLat)}
	if swapCfg.Enabled() {
		if err := swapCfg.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "svagc:", err)
			os.Exit(2)
		}
	}

	if *list {
		for _, s := range workloads.Registry() {
			fmt.Printf("%-16s %-12s paper: %4d threads, %s; scaled: %d threads, %.1f MiB min heap\n",
				s.Name, s.Suite, s.PaperThreads, s.PaperHeap, s.Threads, float64(s.MinHeapBytes)/(1<<20))
		}
		return
	}
	if *soakDur > 0 {
		res, err := soak.Run(soak.Config{
			Collector:       *collector,
			GCWorkers:       *workers,
			Duration:        *soakDur,
			Watchdog:        sim.Time(watchdogD.Nanoseconds()),
			Seed:            *seed,
			Swap:            swapCfg,
			Tenants:         *tenants,
			TenantCapFrames: int(*tenantCap << 20 >> mem.PageShift),
			Log:             os.Stderr,
		})
		if res != nil {
			fmt.Println("soak:", res)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "svagc: soak:", err)
			os.Exit(1)
		}
		return
	}
	if *smrHeap > 0 {
		if err := runSMR(*mach, *collector, *smrHeap<<20, *tenants, *workers,
			*seed, *tenantCap, *gcArb, *faultPln, *faultRt, *faultSd, *traceOut, *traceBuf); err != nil {
			fmt.Fprintln(os.Stderr, "svagc: smr:", err)
			os.Exit(1)
		}
		return
	}
	if *benchName == "" {
		fmt.Fprintln(os.Stderr, "svagc: -bench is required (try -list)")
		os.Exit(2)
	}
	if swapCfg.Enabled() && *physMiB == 0 {
		fmt.Fprintln(os.Stderr, "svagc: the swap tier reclaims against a bounded pool: set -phys (MiB of simulated RAM) with -swap-tier/-zpool")
		os.Exit(2)
	}
	benches := strings.Split(*benchName, ",")
	cost, err := sim.ModelByName(*mach)
	if err != nil {
		fmt.Fprintln(os.Stderr, "svagc:", err)
		os.Exit(2)
	}
	policy, bind, err := topology.ParsePolicy(*numaPol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "svagc:", err)
		os.Exit(2)
	}
	place, err := gc.ParsePlacement(*numaGC)
	if err != nil {
		fmt.Fprintln(os.Stderr, "svagc:", err)
		os.Exit(2)
	}
	faultPlan, err := fault.ParsePlanWithRate(*faultPln, *faultRt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "svagc:", err)
		os.Exit(2)
	}
	faultSeed := *faultSd
	if faultSeed == 0 {
		faultSeed = *seed
	}
	// Each machine gets its own injector so every run replays the exact
	// fault sequence its seed dictates, independent of sibling runs.
	newFault := func() *fault.Injector { return fault.New(faultSeed, faultPlan) }

	// cfgFor builds the JVM configuration for one workload spec, honouring
	// the SVAGC-only threshold/placement overrides and the watchdog
	// deadline.
	deadline := sim.Time(watchdogD.Nanoseconds())
	cfgFor := func(spec *workloads.Spec) (jvm.Config, error) {
		heapBytes := spec.MinHeap(*factor)
		if (*threshold > 0 || place != gc.PlaceSpread) && *collector == jvm.CollectorSVAGC {
			sc := svagc.Config{Workers: *workers, ThresholdPages: *threshold,
				Placement: place, PhaseDeadline: deadline}
			return jvm.Config{
				HeapBytes: heapBytes,
				Threads:   spec.Threads,
				Policy:    svagc.Policy(sc),
				NewCollector: func(h *heap.Heap, roots *gc.RootSet) gc.Collector {
					return svagc.New(h, roots, sc)
				},
			}, nil
		}
		cfg, ok := jvm.ConfigForDeadline(*collector, heapBytes, spec.Threads, *workers, deadline)
		if !ok {
			return jvm.Config{}, fmt.Errorf("unknown collector %q (want %v)", *collector, jvm.CollectorNames())
		}
		return cfg, nil
	}

	// report renders the run summary every mode shares.
	report := func(w io.Writer, spec *workloads.Spec, m *machine.Machine, j *jvm.JVM) {
		st := j.GC.Stats()
		fmt.Fprintf(w, "%s under %s on %s (%.1fx min heap = %.1f MiB, %d mutator threads, %d GC workers, %d JVMs)\n",
			spec.Name, j.GC.Name(), cost.Name, *factor, float64(spec.MinHeap(*factor))/(1<<20), spec.Threads, *workers, *jvms)
		fmt.Fprintf(w, "  app time           %v (mutator %v + pauses %v + concurrent GC %v)\n",
			j.AppTime(), j.MutatorTime(), j.GCPauseTime(), j.GCConcurrentTime())
		fmt.Fprintf(w, "  collections        %d full, %d minor\n", st.Count(gc.KindFull), st.Count(gc.KindMinor))
		fmt.Fprintf(w, "  pause total/max    %v / %v\n", st.TotalPause(""), st.MaxPause(""))
		pt := st.PhaseTotals(gc.KindFull)
		fmt.Fprintf(w, "  full-GC phases     mark %v, forward %v, adjust %v, compact %v\n",
			pt.Mark, pt.Forward, pt.Adjust, pt.Compact)
		p := j.TotalPerf()
		fmt.Fprintf(w, "  moving             %d pages swapped in %d SwapVA calls; %d bytes memmoved\n",
			p.PagesSwapped, p.SwapVACalls, p.BytesCopied)
		fmt.Fprintf(w, "  perf               %s\n", p.String())
		if tn := j.Tenant(); tn != nil {
			u := tn.Usage()
			fmt.Fprintf(w, "  tenant             %s: %d/%d pages charged (peak %d), pressure %s\n",
				u.Name, u.Charged, u.CapFrames, u.Peak, u.Pressure)
		}
		if m.FaultInjector().Active() {
			fmt.Fprintf(w, "  faults             %d injected; %d swap retries, %d copy fallbacks, %d rollbacks, %d IPI re-sends (every GC verified)\n",
				p.FaultsInjected, p.SwapRetries, p.SwapFallbacks, p.SwapRollbacks, p.IPIResends)
		}
		if m.Nodes() > 1 {
			fmt.Fprintf(w, "  numa               %s, %d/%d remote/local accesses, %d remote B, %d remote IPIs, %d cross-node swaps\n",
				m.Topology(), p.NUMARemote, p.NUMALocal, p.NUMARemoteBytes, p.IPIsRemote, p.CrossNodeSwaps)
		}
		if m.SwapEnabled() {
			st := m.SwapTier().Stats()
			var kruns uint64
			if kp := m.KswapdPerf(); kp != nil {
				kruns = kp.ReclaimRuns
			}
			fmt.Fprintf(w, "  swap               %d pages out, %d in, %d zero-discarded; %d in tier at end; %d kswapd runs, %d direct reclaims\n",
				st.OutPages, st.InPages, st.ZeroPages, st.Slots, kruns, p.DirectReclaims)
		}
	}

	if len(benches) > 1 {
		for _, f := range []struct {
			name string
			set  bool
		}{
			{"-trace", *traceOut != ""}, {"-metrics", *metrics != ""},
			{"-trace-spill", *spillOut != ""}, {"-histo", *histo},
			{"-gclog", *gclog}, {"-pauses", *pauses},
			{"-tenant-cap", *tenantCap > 0}, {"-gc-arbiter", *gcArb > 0},
		} {
			if f.set {
				fmt.Fprintf(os.Stderr, "svagc: %s needs a single -bench workload, not a list\n", f.name)
				os.Exit(2)
			}
		}
		mc := machine.Config{Cost: cost, Sockets: *sockets, NUMAPolicy: policy,
			NUMABind: bind, PhysBytes: *physMiB << 20, Swap: swapCfg, SingleDriver: true}
		runMany(benches, *parallel, mc, *jvms, *seed, newFault, cfgFor, report)
		return
	}

	spec, err := workloads.ByName(strings.TrimSpace(benches[0]))
	if err != nil {
		fmt.Fprintln(os.Stderr, "svagc:", err)
		os.Exit(2)
	}
	m, err := machine.New(machine.Config{
		Cost:         cost,
		Sockets:      *sockets,
		NUMAPolicy:   policy,
		NUMABind:     bind,
		PhysBytes:    *physMiB << 20,
		Swap:         swapCfg,
		SingleDriver: true,
		Fault:        newFault(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "svagc:", err)
		os.Exit(1)
	}
	if *jvms > 1 {
		m.SetActiveJVMs(*jvms)
	}
	var tr *trace.Tracer
	if *traceOut != "" || *metrics != "" || *spillOut != "" {
		tr = m.EnableTracing(*traceBuf)
	}
	var spillFile *os.File
	if *spillOut != "" {
		spillFile, err = os.Create(*spillOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "svagc: trace-spill:", err)
			os.Exit(1)
		}
		tr.SetSpill(spillFile)
	}

	cfg, err := cfgFor(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "svagc:", err)
		os.Exit(2)
	}
	if *tenantCap > 0 {
		t, err := m.NewTenant("tenant0", int(*tenantCap<<20>>mem.PageShift))
		if err != nil {
			fmt.Fprintln(os.Stderr, "svagc:", err)
			os.Exit(2)
		}
		cfg.Tenant = t
	}
	if *gcArb > 0 {
		cfg.Arbiter = sched.New(sched.Config{MaxConcurrent: *gcArb, Injector: m.FaultInjector()})
	}
	j, err := jvm.New(m, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "svagc:", err)
		os.Exit(1)
	}
	if *gclog {
		j.WithGCLog(os.Stderr)
	}
	wallStart := time.Now()
	if err := spec.Run(j, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "svagc:", err)
		os.Exit(1)
	}
	simRate(1, j.AppTime(), time.Since(wallStart))

	report(os.Stdout, spec, m, j)
	st := j.GC.Stats()
	if *pauses {
		for i := range st.Pauses {
			fmt.Printf("  pause[%d] %s\n", i, st.Pauses[i].String())
		}
	}
	if *histo {
		// A final full collection compacts the heap so the histogram
		// reports live objects only (plus alignment fillers).
		if _, err := j.CollectNow(); err != nil {
			fmt.Fprintln(os.Stderr, "svagc: final collection:", err)
			os.Exit(1)
		}
		stats, err := j.Heap.Histogram(j.Thread(0).Ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "svagc: histogram:", err)
			os.Exit(1)
		}
		fmt.Println("live-heap class histogram:")
		fmt.Print(heap.FormatHistogram(stats))
	}
	if *traceOut != "" {
		if err := writeFile(*traceOut, tr.WriteChromeJSON); err != nil {
			fmt.Fprintln(os.Stderr, "svagc: trace:", err)
			os.Exit(1)
		}
	}
	if *metrics != "" {
		if err := writeFile(*metrics, trace.SnapshotOf(tr).WritePrometheus); err != nil {
			fmt.Fprintln(os.Stderr, "svagc: metrics:", err)
			os.Exit(1)
		}
	}
	if spillFile != nil {
		if err := tr.SpillErr(); err != nil {
			fmt.Fprintln(os.Stderr, "svagc: trace-spill:", err)
			os.Exit(1)
		}
		if err := spillFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "svagc: trace-spill:", err)
			os.Exit(1)
		}
		fmt.Printf("  trace-spill        %d events streamed to %s\n", tr.Spilled(), *spillOut)
	}
}

// runSMR runs the raft-style SMR cluster workload: -tenants replicas
// (default 3), each a capped tenant JVM, collections arbitrated when
// -gc-arbiter is set, leader churn driven by GC pauses.
func runSMR(mach, collector string, heapBytes int64, replicas, workers int,
	seed, tenantCapMiB int64, maxConcurrentGC int,
	faultPln string, faultRt float64, faultSd int64, traceOut string, traceBuf int) error {

	cost, err := sim.ModelByName(mach)
	if err != nil {
		return err
	}
	faultPlan, err := fault.ParsePlanWithRate(faultPln, faultRt)
	if err != nil {
		return err
	}
	if faultSd == 0 {
		faultSd = seed
	}
	m, err := machine.New(machine.Config{
		Cost:         cost,
		SingleDriver: true,
		Fault:        fault.New(faultSd, faultPlan),
	})
	if err != nil {
		return err
	}
	var tr *trace.Tracer
	if traceOut != "" {
		tr = m.EnableTracing(traceBuf)
	}
	capFrames := int(tenantCapMiB << 20 >> mem.PageShift)
	if capFrames <= 0 {
		// Default cap: heap plus a copying collector's to-space plus slack.
		capFrames = 2*int(heapBytes>>mem.PageShift) + 64
	}
	res, err := smr.Run(m, smr.Config{
		Collector:       collector,
		Replicas:        replicas,
		HeapBytes:       heapBytes,
		GCWorkers:       workers,
		Seed:            seed,
		CapFrames:       capFrames,
		MaxConcurrentGC: maxConcurrentGC,
	})
	if err != nil {
		return err
	}
	fmt.Printf("smr cluster: %d replicas under %s on %s (%.1f MiB heap each, cap %d frames)\n",
		res.Replicas, collector, cost.Name, float64(heapBytes)/(1<<20), capFrames)
	fmt.Printf("  rounds/commits     %d / %d\n", res.Rounds, res.Commits)
	fmt.Printf("  leader churn       %d failovers, %d evictions, %d entries replayed\n",
		res.Failovers, res.Evictions, res.ReplayEntries)
	fmt.Printf("  commit latency     p50 %v, p99 %v, p99.9 %v, max %v\n",
		res.P50, res.P99, res.P999, res.Max)
	fmt.Printf("  max GC pause       %v\n", res.MaxPause)
	if maxConcurrentGC > 0 {
		a := res.Arbiter
		fmt.Printf("  arbiter            %d grants, %d waits (%v total, %v max), %d deferrals, %d aging breaks\n",
			a.Grants, a.Waits, a.TotalWaitNs, a.MaxWaitNs, a.Deferrals, a.AgingBreaks)
	}
	fmt.Printf("  commit hash        %#016x\n", res.CommitHash)
	for _, u := range m.MemReport().Tenants {
		fmt.Printf("  tenant %-10s %d/%d pages charged (peak %d), pressure %s\n",
			u.Name, u.Charged, u.CapFrames, u.Peak, u.Pressure)
	}
	if traceOut != "" {
		if err := writeFile(traceOut, tr.WriteChromeJSON); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	return nil
}

// runMany fans the listed workloads out over a bounded host worker pool.
// Every run builds its own Machine, so runs share no simulated state; the
// reports are buffered and printed in input order no matter which host
// goroutine finishes first, so the stdout of `-bench A,B -parallel 8` is
// byte-identical to `-parallel 1`.
func runMany(benches []string, parallel int, mc machine.Config, jvms int, seed int64,
	newFault func() *fault.Injector,
	cfgFor func(*workloads.Spec) (jvm.Config, error),
	report func(io.Writer, *workloads.Spec, *machine.Machine, *jvm.JVM)) {
	type out struct {
		text string
		sim  sim.Time
		err  error
	}
	runOne := func(name string) out {
		spec, err := workloads.ByName(strings.TrimSpace(name))
		if err != nil {
			return out{err: err}
		}
		mcfg := mc
		mcfg.Fault = newFault()
		m, err := machine.New(mcfg)
		if err != nil {
			return out{err: err}
		}
		if jvms > 1 {
			m.SetActiveJVMs(jvms)
		}
		cfg, err := cfgFor(spec)
		if err != nil {
			return out{err: err}
		}
		j, err := jvm.New(m, cfg)
		if err != nil {
			return out{err: err}
		}
		if err := spec.Run(j, seed); err != nil {
			return out{err: err}
		}
		var b strings.Builder
		report(&b, spec, m, j)
		return out{text: b.String(), sim: j.AppTime()}
	}

	if parallel < 1 {
		parallel = 1
	}
	if parallel > len(benches) {
		parallel = len(benches)
	}
	wallStart := time.Now()
	results := make([]out, len(benches))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = runOne(benches[i])
			}
		}()
	}
	for i := range benches {
		next <- i
	}
	close(next)
	wg.Wait()

	var simTotal sim.Time
	failed := false
	for i, r := range results {
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "svagc: %s: %v\n", strings.TrimSpace(benches[i]), r.err)
			failed = true
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(r.text)
		simTotal += r.sim
	}
	simRate(len(benches), simTotal, time.Since(wallStart))
	if failed {
		os.Exit(1)
	}
}

// simRate prints the simulation-throughput summary to stderr: how much
// simulated time the run(s) covered per unit of host wall time.
func simRate(runs int, simulated sim.Time, wall time.Duration) {
	w := wall.Seconds()
	if w <= 0 {
		w = 1e-9
	}
	fmt.Fprintf(os.Stderr,
		"svagc: %d run(s), %.3fs simulated in %.2fs wall — %.0f sim-ns/host-ms, %.2f runs/s\n",
		runs, simulated.Seconds(), w, float64(simulated)/(w*1e3), float64(runs)/w)
}

// writeFile streams write into path, closing cleanly on error.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
