package svagc_test

import (
	"testing"

	svagc "repro"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	m := svagc.NewMachine(svagc.XeonGold6130())
	vm, err := svagc.NewJVM(m, svagc.JVMConfig{HeapBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	th := vm.Thread(0)
	var keep []interface{ Remove() }
	_ = keep
	r, err := th.AllocRooted(svagc.AllocSpec{Payload: 1 << 20, Class: 3})
	if err != nil {
		t.Fatal(err)
	}
	garbage, err := th.AllocRooted(svagc.AllocSpec{Payload: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	vm.Roots.Remove(garbage)
	pause, err := vm.CollectNow()
	if err != nil {
		t.Fatal(err)
	}
	if pause.LiveObjects != 1 {
		t.Errorf("live objects = %d", pause.LiveObjects)
	}
	meta, err := vm.Heap.ReadMeta(th.Ctx, r.Obj)
	if err != nil || meta.Class != 3 {
		t.Errorf("survivor meta %+v err %v", meta, err)
	}
}

func TestFacadeCollectorPresets(t *testing.T) {
	m := svagc.NewMachine(svagc.CoreI5_7600())
	for _, name := range []string{
		svagc.CollectorSVAGC, svagc.CollectorSVAGCBase,
		svagc.CollectorParallel, svagc.CollectorShen,
	} {
		vm, err := svagc.NewJVM(m, svagc.JVMConfig{HeapBytes: 4 << 20, Collector: name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if vm.GC.Name() != name {
			t.Errorf("collector %q, want %q", vm.GC.Name(), name)
		}
	}
	if _, err := svagc.NewJVM(m, svagc.JVMConfig{HeapBytes: 1 << 20, Collector: "zgc"}); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestFacadeRegistries(t *testing.T) {
	if len(svagc.Workloads()) != 15 {
		t.Errorf("workloads = %d, want 15", len(svagc.Workloads()))
	}
	if len(svagc.Experiments()) != 22 {
		t.Errorf("experiments = %d, want 22", len(svagc.Experiments()))
	}
	if _, err := svagc.WorkloadByName("Sigverify"); err != nil {
		t.Error(err)
	}
	if _, err := svagc.ExperimentByID("fig11"); err != nil {
		t.Error(err)
	}
}

func TestFacadePolicies(t *testing.T) {
	p := svagc.DefaultPolicy()
	if !p.UseSwapVA || p.ThresholdPages != svagc.DefaultThresholdPages {
		t.Errorf("default policy %+v", p)
	}
	if svagc.MemmovePolicy().UseSwapVA {
		t.Error("memmove policy swaps")
	}
	be, err := svagc.BreakEvenPages(svagc.XeonGold6130(), 32)
	if err != nil || be != svagc.DefaultThresholdPages {
		t.Errorf("break-even %d err %v", be, err)
	}
}

func TestFacadeKernelAccess(t *testing.T) {
	m := svagc.NewMachine(svagc.XeonGold6130())
	k := svagc.NewKernel(m)
	as := m.NewAddressSpace()
	a, err := as.MapRegion(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := as.MapRegion(4)
	if err != nil {
		t.Fatal(err)
	}
	as.RawWrite(a, []byte{1})
	as.RawWrite(b, []byte{2})
	ctx := m.NewContext(0)
	var opts svagc.SwapOptions
	opts.PMDCaching = true
	if err := k.SwapVA(ctx, as, a, b, 4, opts); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1)
	as.RawRead(a, got)
	if got[0] != 2 {
		t.Error("facade SwapVA did not swap")
	}
}
